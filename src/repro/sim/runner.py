"""Simulation runner: one benchmark x one technique x one floorplan.

Wires every substrate together — synthetic (or program) trace, the
out-of-order core, the power accountant, the RC thermal model, the
sensor bank, and the DTM controller — and runs for a fixed number of
cycles, returning a :class:`~repro.sim.results.SimulationResult`.

The run starts from the thermal steady state of a nominal utilization
(the analogue of the paper's fast-forward + warm-up) so that heating
dynamics, not cold-start transients, dominate the measurement.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterator, Optional

from ..analysis.sanitize import Sanitizer, sanitize_enabled
from ..core.dtm import ThermalManager
from ..core.mapping import make_mapping
from ..core.policies import TechniqueConfig
from ..pipeline.config import ProcessorConfig, ThermalConfig
from ..pipeline.isa import MicroOp
from ..pipeline.processor import Processor, ProcessorStats
from ..power.accounting import PowerAccountant
from ..power.energy import EnergyModel
from ..thermal.floorplan import Floorplan, FloorplanVariant, ev6_floorplan
from ..thermal.rc_model import ThermalModel
from ..thermal.sensors import SensorBank
from ..workloads.spec2000 import workload
from .results import SimulationResult

#: Default run length (cycles): long enough for several heating /
#: cooling episodes under the default thermal acceleration.
DEFAULT_MAX_CYCLES = 120_000


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one run needs."""

    benchmark: str
    variant: FloorplanVariant = FloorplanVariant.BASE
    techniques: TechniqueConfig = field(default_factory=TechniqueConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    energy: EnergyModel = field(default_factory=EnergyModel)
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: Cycles executed before measurement to estimate this workload's
    #: average power; the thermal state is initialized to the steady
    #: state of that power (the analogue of HotSpot's two-pass
    #: steady-state initialization after SimPoint fast-forward).
    warmup_cycles: int = 12_000
    seed: int = 1
    technique_label: str = ""
    #: Install the runtime sanitizer's invariant hooks (energy
    #: conservation, temperature bounds, queue/register-file coherence)
    #: for this run.  ``REPRO_SANITIZE=1`` in the environment enables
    #: it regardless of this flag.
    sanitize: bool = False

    def label(self) -> str:
        return self.technique_label or (
            f"iq={self.techniques.issue_queue.value}/"
            f"alu={self.techniques.alus.value}/"
            f"rf={self.techniques.regfile.label()}")


class Simulator:
    """Assembles and drives one full-system simulation."""

    def __init__(self, config: SimulationConfig,
                 trace: Optional[Iterator[MicroOp]] = None) -> None:
        self.config = config
        self.floorplan = ev6_floorplan(config.variant)
        self.thermal = ThermalModel(
            self.floorplan,
            ambient_k=config.thermal.ambient_k,
            acceleration=config.thermal.acceleration)
        self.accountant = PowerAccountant(self.floorplan, config.energy)
        mapping = make_mapping(config.techniques.regfile.mapping,
                               config.processor.num_int_alus,
                               config.processor.num_regfile_copies)
        self.processor = Processor(
            trace if trace is not None
            else workload(config.benchmark, seed=config.seed),
            config=config.processor,
            mapping=mapping,
            round_robin_alus=config.techniques.round_robin_alus)
        source = trace if trace is not None else self.processor.fetch.trace
        footprint = getattr(source, "warm_footprint", None)
        if footprint is not None:
            l1_addrs, l2_addrs = footprint()
            self.processor.memory.warm(l1_addrs, l2_addrs)
        self.sensors = SensorBank(self.thermal)
        self.dtm = ThermalManager(self.processor, self.sensors,
                                  config.thermal, config.techniques)
        self._interval_s = (config.thermal.sensor_interval_cycles
                            * config.thermal.cycle_time_s)
        self.sanitizer: Optional[Sanitizer] = None
        if config.sanitize or sanitize_enabled():
            self.sanitizer = Sanitizer()
            self.sanitizer.attach(self)

    def run(self) -> SimulationResult:
        """Execute the configured run and collect results."""
        self._warmup()
        self.processor.run(
            self.config.max_cycles,
            on_sample=self._on_sample,
            sample_interval=self.config.thermal.sensor_interval_cycles)
        return self._collect()

    def _warmup(self) -> None:
        """Run unmeasured cycles to estimate average power, set the
        thermal network to its steady state for that power, and zero
        the performance statistics."""
        cycles = self.config.warmup_cycles
        self.accountant.reset(self.processor.activity_snapshot())
        if cycles > 0:
            self.processor.run(cycles)
            seconds = cycles * self.config.thermal.cycle_time_s
            powers = self.accountant.sample(
                self.processor.activity_snapshot(), seconds)
            self.thermal.initialize_steady_state(powers)
        self.processor.stats = ProcessorStats()

    def _on_sample(self, processor: Processor) -> None:
        # Vector fast path: the accountant's power vector is aligned
        # with floorplan.names, which is exactly the thermal model's
        # die-node order — no per-sample dict is built.
        powers = self.accountant.sample_powers(
            processor.activity_snapshot(), self._interval_s)
        self.thermal.step_vector(powers, self._interval_s)
        self.dtm.on_sample(processor)

    def _collect(self) -> SimulationResult:
        stats = self.processor.stats
        dtm = self.dtm.stats
        mean_temps = {name: self.sensors.mean(name)
                      for name in self.floorplan.names}
        max_temps = {name: self.sensors.maximum(name)
                     for name in self.floorplan.names}
        return SimulationResult(
            benchmark=self.config.benchmark,
            technique_label=self.config.label(),
            cycles=stats.cycles,
            committed=stats.committed,
            stall_cycles=stats.stall_cycles,
            global_stalls=dtm.global_stalls,
            stall_reasons=dict(dtm.stall_reasons),
            iq_toggles=((self.dtm.int_toggler.stats.toggles
                         if self.dtm.int_toggler else 0)
                        + (self.dtm.fp_toggler.stats.toggles
                           if self.dtm.fp_toggler else 0)),
            alu_turnoffs=dtm.alu_turnoffs + dtm.fp_adder_turnoffs,
            rf_turnoffs=dtm.rf_turnoffs,
            mean_temps=mean_temps,
            max_temps=max_temps,
        )


def run_simulation(config: SimulationConfig,
                   trace: Optional[Iterator[MicroOp]] = None
                   ) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, trace=trace).run()
