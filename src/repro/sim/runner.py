"""Simulation runner: one benchmark x one technique x one floorplan.

Wires every substrate together — synthetic (or program) trace, the
out-of-order core, the power accountant, the RC thermal model, the
sensor bank, and the DTM controller — and runs for a fixed number of
cycles, returning a :class:`~repro.sim.results.SimulationResult`.

The run starts from the thermal steady state of a nominal utilization
(the analogue of the paper's fast-forward + warm-up) so that heating
dynamics, not cold-start transients, dominate the measurement.
"""

from __future__ import annotations

import gc
import pickle
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Dict, Iterator, Optional

from ..analysis.sanitize import Sanitizer, sanitize_enabled
from ..core.dtm import ThermalManager
from ..core.mapping import make_mapping
from ..core.policies import TechniqueConfig
from ..pipeline.config import ProcessorConfig, ThermalConfig
from ..pipeline.isa import MicroOp
from ..pipeline.processor import Processor, ProcessorStats
from ..power.accounting import PowerAccountant
from ..power.energy import EnergyModel
from ..thermal.floorplan import Floorplan, FloorplanVariant, ev6_floorplan
from ..thermal.rc_model import ThermalModel
from ..thermal.sensors import SensorBank
from ..workloads.trace import ReplayTrace, replay_trace
from .checkpoint import CHECKPOINT_VERSION, CheckpointError
from .results import SimulationResult

#: Default run length (cycles): long enough for several heating /
#: cooling episodes under the default thermal acceleration.
DEFAULT_MAX_CYCLES = 120_000


@contextmanager
def _gc_paused() -> Iterator[None]:
    """Pause cyclic garbage collection around a simulation loop.

    The simulator's object graph is cycle-free (micro-ops, queue
    entries, and in-flight records only reference forward), so nothing
    in a run *needs* the collector — but the materialized trace keeps
    tens of thousands of micro-ops alive, and the periodic generational
    scans over them are pure overhead in the cycle loop.  Reference
    counting still frees all per-cycle garbage immediately.
    """
    if not gc.isenabled():
        yield
        return
    gc.disable()
    try:
        yield
    finally:
        gc.enable()


@dataclass(frozen=True)
class SimulationConfig:
    """Everything one run needs."""

    benchmark: str
    variant: FloorplanVariant = FloorplanVariant.BASE
    techniques: TechniqueConfig = field(default_factory=TechniqueConfig)
    processor: ProcessorConfig = field(default_factory=ProcessorConfig)
    thermal: ThermalConfig = field(default_factory=ThermalConfig)
    energy: EnergyModel = field(default_factory=EnergyModel)
    max_cycles: int = DEFAULT_MAX_CYCLES
    #: Cycles executed before measurement to estimate this workload's
    #: average power; the thermal state is initialized to the steady
    #: state of that power (the analogue of HotSpot's two-pass
    #: steady-state initialization after SimPoint fast-forward).
    warmup_cycles: int = 12_000
    seed: int = 1
    technique_label: str = ""
    #: Install the runtime sanitizer's invariant hooks (energy
    #: conservation, temperature bounds, queue/register-file coherence)
    #: for this run.  ``REPRO_SANITIZE=1`` in the environment enables
    #: it regardless of this flag.
    sanitize: bool = False

    def label(self) -> str:
        return self.technique_label or (
            f"iq={self.techniques.issue_queue.value}/"
            f"alu={self.techniques.alus.value}/"
            f"rf={self.techniques.regfile.label()}")


class Simulator:
    """Assembles and drives one full-system simulation."""

    def __init__(self, config: SimulationConfig,
                 trace: Optional[Iterator[MicroOp]] = None,
                 warm_caches: bool = True) -> None:
        self.config = config
        self.floorplan = ev6_floorplan(config.variant)
        self.thermal = ThermalModel(
            self.floorplan,
            ambient_k=config.thermal.ambient_k,
            acceleration=config.thermal.acceleration)
        self.accountant = PowerAccountant(self.floorplan, config.energy)
        mapping = make_mapping(config.techniques.regfile.mapping,
                               config.processor.num_int_alus,
                               config.processor.num_regfile_copies)
        self.processor = Processor(
            trace if trace is not None
            else replay_trace(config.benchmark, config.seed),
            config=config.processor,
            mapping=mapping,
            round_robin_alus=config.techniques.round_robin_alus)
        source = trace if trace is not None else self.processor.fetch.trace
        footprint = getattr(source, "warm_footprint", None)
        # ``warm_caches=False`` is the checkpoint-restore path: the
        # restored cache state supersedes the pre-touch pass entirely.
        if footprint is not None and warm_caches:
            l1_addrs, l2_addrs = footprint()
            self.processor.memory.warm(l1_addrs, l2_addrs)
        self.sensors = SensorBank(self.thermal)
        self.dtm = ThermalManager(self.processor, self.sensors,
                                  config.thermal, config.techniques)
        self._interval_s = (config.thermal.sensor_interval_cycles
                            * config.thermal.cycle_time_s)
        #: Wall-clock seconds per stage (``warmup_s`` or ``restore_s``,
        #: ``measure_s``, ``sample_s``), filled in as stages run.
        self.stage_times: Dict[str, float] = {}
        self._sample_s = 0.0
        self._warm_done = False
        self._measure_started = False
        self._warm_base: Any = None
        self._warm_end: Any = None
        self.sanitizer: Optional[Sanitizer] = None
        if config.sanitize or sanitize_enabled():
            self.sanitizer = Sanitizer()
            self.sanitizer.attach(self)

    def run(self) -> SimulationResult:
        """Execute the configured run and collect results."""
        self.prepare()
        self._measure_started = True
        self._sample_s = 0.0
        start = perf_counter()
        with _gc_paused():
            self.processor.run(
                self.config.max_cycles,
                on_sample=self._on_sample,
                sample_interval=self.config.thermal.sensor_interval_cycles)
        elapsed = perf_counter() - start
        self.stage_times["sample_s"] = self._sample_s
        self.stage_times["measure_s"] = elapsed - self._sample_s
        return self._collect()

    def prepare(self) -> None:
        """Bring the simulator to its post-warm-up state (idempotent).

        Separated from :meth:`run` so a warm checkpoint can be captured
        between warm-up and measurement (see :meth:`capture_warm_state`).
        """
        if self._warm_done:
            return
        start = perf_counter()
        self._warmup()
        self.stage_times["warmup_s"] = perf_counter() - start

    def _warmup(self) -> None:
        """Run unmeasured cycles to estimate average power, set the
        thermal network to its steady state for that power, and zero
        the performance statistics."""
        cycles = self.config.warmup_cycles
        base = self.processor.activity_snapshot()
        self._warm_base = base
        self._warm_end = base
        self.accountant.reset(base)
        if cycles > 0:
            with _gc_paused():
                self.processor.run(cycles)
            end = self.processor.activity_snapshot()
            self._warm_end = end
            seconds = cycles * self.config.thermal.cycle_time_s
            powers = self.accountant.sample(end, seconds)
            self.thermal.initialize_steady_state(powers)
        self.processor.stats = ProcessorStats()
        self._warm_done = True

    # ------------------------------------------------------------------
    # warm-state checkpointing
    # ------------------------------------------------------------------
    @property
    def supports_checkpoint(self) -> bool:
        """Checkpoints need a repositionable trace; custom iterator
        traces passed to :meth:`__init__` cannot be replayed."""
        return isinstance(self.processor.fetch.trace, ReplayTrace)

    def capture_warm_state(self) -> bytes:
        """Serialize the post-warm-up state into a checkpoint blob.

        Must be called after :meth:`prepare` and before :meth:`run`
        advances the pipeline — the snapshot holds live references into
        the processor, so the single :func:`pickle.dumps` here is what
        freezes them (and preserves shared ``MicroOp`` identity across
        the fetch buffer, issue queues, ROB, and functional units).
        """
        if not self._warm_done:
            raise CheckpointError("prepare() must complete before capture")
        if self._measure_started:
            raise CheckpointError("cannot capture after measurement began")
        trace = self.processor.fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise CheckpointError("trace is not replayable")
        payload = {
            "version": CHECKPOINT_VERSION,
            "trace_position": trace.position,
            "processor": self.processor.snapshot_state(),
            "warm_base": self._warm_base,
            "warm_end": self._warm_end,
        }
        return pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)

    @classmethod
    def from_checkpoint(cls, config: SimulationConfig,
                        blob: bytes) -> "Simulator":
        """Build a simulator already in its post-warm-up state.

        The power/thermal initialization is *replayed* from the stored
        activity snapshots through this instance's (possibly sanitizer-
        wrapped) accountant and thermal model, so a restored run is
        bit-identical to a fresh one — including sanitizer bookkeeping.
        Raises :class:`CheckpointError` on any malformed blob; callers
        fall back to a fresh warm-up.
        """
        start = perf_counter()
        sim = cls(config, warm_caches=False)
        trace = sim.processor.fetch.trace
        if not isinstance(trace, ReplayTrace):
            raise CheckpointError("trace is not replayable")
        try:
            state = pickle.loads(blob)
            if (not isinstance(state, dict)
                    or state.get("version") != CHECKPOINT_VERSION):
                raise CheckpointError("unrecognized checkpoint format")
            sim.processor.restore_state(state["processor"])
            trace.seek(state["trace_position"])
            sim._warm_base = state["warm_base"]
            sim._warm_end = state["warm_end"]
            sim.accountant.reset(sim._warm_base)
            if config.warmup_cycles > 0:
                seconds = config.warmup_cycles * config.thermal.cycle_time_s
                powers = sim.accountant.sample(sim._warm_end, seconds)
                sim.thermal.initialize_steady_state(powers)
        except CheckpointError:
            raise
        except Exception as exc:
            raise CheckpointError(f"corrupt checkpoint: {exc!r}") from exc
        sim._warm_done = True
        sim.stage_times["restore_s"] = perf_counter() - start
        return sim

    def _on_sample(self, processor: Processor) -> None:
        start = perf_counter()
        # Vector fast path: the accountant's power vector is aligned
        # with floorplan.names, which is exactly the thermal model's
        # die-node order — no per-sample dict is built.
        powers = self.accountant.sample_powers(
            processor.activity_snapshot(), self._interval_s)
        self.thermal.step_vector(powers, self._interval_s)
        self.dtm.on_sample(processor)
        self._sample_s += perf_counter() - start

    def _collect(self) -> SimulationResult:
        stats = self.processor.stats
        dtm = self.dtm.stats
        mean_temps = {name: self.sensors.mean(name)
                      for name in self.floorplan.names}
        max_temps = {name: self.sensors.maximum(name)
                     for name in self.floorplan.names}
        return SimulationResult(
            benchmark=self.config.benchmark,
            technique_label=self.config.label(),
            cycles=stats.cycles,
            committed=stats.committed,
            stall_cycles=stats.stall_cycles,
            global_stalls=dtm.global_stalls,
            stall_reasons=dict(dtm.stall_reasons),
            iq_toggles=((self.dtm.int_toggler.stats.toggles
                         if self.dtm.int_toggler else 0)
                        + (self.dtm.fp_toggler.stats.toggles
                           if self.dtm.fp_toggler else 0)),
            alu_turnoffs=dtm.alu_turnoffs + dtm.fp_adder_turnoffs,
            rf_turnoffs=dtm.rf_turnoffs,
            mean_temps=mean_temps,
            max_temps=max_temps,
        )


def run_simulation(config: SimulationConfig,
                   trace: Optional[Iterator[MicroOp]] = None
                   ) -> SimulationResult:
    """Convenience wrapper: build a :class:`Simulator` and run it."""
    return Simulator(config, trace=trace).run()
