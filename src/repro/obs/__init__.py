"""Observability subsystem: event tracing, metrics, and reports.

Three layers, all off the simulator's hot path by default:

* :mod:`repro.obs.events` — the typed event taxonomy (toggles, unit
  turnoffs, core stalls, ceiling crossings, checkpoint restores),
  each stamped with the cycle it was detected at;
* :mod:`repro.obs.collector` — :class:`TraceCollector`, a preallocated
  ring buffer the pipeline/core components emit events into, with
  in-memory and JSONL export.  Tracing is **opt-in**
  (``SimulationConfig(trace_events=True)`` or ``REPRO_TRACE=1``); when
  off, every emission site is a single ``is not None`` check and runs
  are bit-identical to an untraced build;
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry` of counters,
  gauges, vectors and histograms that every run serializes into
  :class:`~repro.sim.results.SimulationResult.metrics` and that
  :class:`~repro.sim.parallel.ExperimentEngine` merges across workers
  into fleet-level metrics.

Report generation (:mod:`repro.obs.report`, the ``repro report`` CLI)
is imported explicitly — not re-exported here — because it pulls in
the experiment grids and would create an import cycle with
:mod:`repro.sim.parallel`, which only needs the metrics layer.
"""

from .collector import (QueueTracer, TraceCollector, UnitTracer,
                        trace_enabled)
from .events import (EVENT_TYPES, CheckpointRestore, CoreResume, CoreStall,
                     ThermalCeilingCross, ToggleEvent, TraceEvent,
                     UnitTurnoff, UnitTurnon, event_from_dict)
from .metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                      VectorCounter)
from .sparkline import downsample, sparkline

__all__ = [
    "TraceCollector", "QueueTracer", "UnitTracer", "trace_enabled",
    "TraceEvent", "ToggleEvent", "UnitTurnoff", "UnitTurnon",
    "CoreStall", "CoreResume", "ThermalCeilingCross", "CheckpointRestore",
    "EVENT_TYPES", "event_from_dict",
    "Counter", "Gauge", "VectorCounter", "Histogram", "MetricsRegistry",
    "sparkline", "downsample",
]
