"""Low-overhead event collection: ring buffer, export, tracer adapters.

:class:`TraceCollector` is the single sink every component emits into.
It preallocates a fixed-size ring of event slots so steady-state
emission is an index store plus a counter bump — no per-event list
growth, no allocation beyond the event object itself.  When the ring
wraps, the *oldest* events are dropped (and counted in ``dropped``);
per-kind totals in ``counts`` always cover everything emitted, so
summaries stay exact even after a wrap.

Tracing is off by default.  Components hold ``None`` instead of a
collector, making every emission site a single ``is not None`` check;
the acceptance bar is that an untraced run is bit-identical to a build
without the obs layer and stays within the CI perf floor.

The tracer adapters (:class:`QueueTracer`, :class:`UnitTracer`) are
what the core controllers actually hold: they bind a collector to the
static context the controller itself lacks — the floorplan block
names and the processor's cycle clock — so the controllers stay free
of floorplan and timing knowledge.
"""

from __future__ import annotations

import json
import os
from typing import (Callable, Dict, List, Optional, Sequence, Tuple,
                    Type, Union)

from .events import ToggleEvent, TraceEvent, UnitTurnoff, UnitTurnon

__all__ = ["TraceCollector", "QueueTracer", "UnitTracer",
           "trace_enabled", "DEFAULT_CAPACITY"]

#: Default ring size: generously above what a DTM-heavy 200k-cycle run
#: emits (hundreds of events), small enough to preallocate instantly.
DEFAULT_CAPACITY = 65_536


def trace_enabled() -> bool:
    """Whether ``REPRO_TRACE`` asks for event tracing regardless of
    the per-run ``SimulationConfig.trace_events`` flag."""
    return os.environ.get("REPRO_TRACE", "").strip().lower() in (
        "1", "true", "yes", "on")


class TraceCollector:
    """Preallocated ring buffer of :class:`TraceEvent` objects."""

    __slots__ = ("_ring", "_next", "_size", "dropped", "counts")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        self._ring: List[Optional[TraceEvent]] = [None] * capacity
        self._next = 0
        self._size = 0
        #: Events overwritten after the ring filled (oldest-first).
        self.dropped = 0
        #: Per-kind totals over everything ever emitted (survives wraps).
        self.counts: Dict[str, int] = {}

    # ------------------------------------------------------------------
    @property
    def capacity(self) -> int:
        return len(self._ring)

    @property
    def total_emitted(self) -> int:
        return self._size + self.dropped

    def __len__(self) -> int:
        return self._size

    def emit(self, event: TraceEvent) -> None:
        """Record one event (O(1), overwrites the oldest when full)."""
        ring = self._ring
        index = self._next
        if self._size == len(ring):
            self.dropped += 1
        else:
            self._size += 1
        ring[index] = event
        self._next = (index + 1) % len(ring)
        counts = self.counts
        counts[event.kind] = counts.get(event.kind, 0) + 1

    def clear(self) -> None:
        self._ring = [None] * len(self._ring)
        self._next = 0
        self._size = 0
        self.dropped = 0
        self.counts = {}

    # ------------------------------------------------------------------
    # export
    # ------------------------------------------------------------------
    def events(self) -> List[TraceEvent]:
        """Retained events, oldest first (in-memory export)."""
        size = self._size
        ring = self._ring
        start = (self._next - size) % len(ring)
        out: List[TraceEvent] = []
        for offset in range(size):
            event = ring[(start + offset) % len(ring)]
            assert event is not None  # within the retained window
            out.append(event)
        return out

    def events_of(self, kind: Union[str, Type[TraceEvent]]
                  ) -> List[TraceEvent]:
        """Retained events of one kind (name or event class)."""
        wanted = kind if isinstance(kind, str) else kind.kind
        return [e for e in self.events() if e.kind == wanted]

    def to_dicts(self) -> List[Dict[str, object]]:
        return [event.to_dict() for event in self.events()]

    def export_jsonl(self, path: Union[str, "os.PathLike[str]"]) -> int:
        """Write retained events as JSON Lines; returns the count."""
        events = self.events()
        with open(path, "w", encoding="utf-8") as handle:
            for event in events:
                handle.write(json.dumps(event.to_dict(),
                                        separators=(",", ":")))
                handle.write("\n")
        return len(events)

    def summary(self) -> str:
        """One line per kind: ``toggle ×14`` style totals."""
        if not self.counts:
            return "no events"
        parts = [f"{kind} ×{count}"
                 for kind, count in sorted(self.counts.items())]
        text = ", ".join(parts)
        if self.dropped:
            text += f" ({self.dropped} oldest dropped)"
        return text


# ---------------------------------------------------------------------------
# tracer adapters held by the core controllers
# ---------------------------------------------------------------------------

#: Callable returning the current processor cycle.
Clock = Callable[[], int]


class QueueTracer:
    """Binds one issue queue's toggling controller to the collector."""

    __slots__ = ("collector", "queue", "clock")

    def __init__(self, collector: TraceCollector, queue: str,
                 clock: Clock) -> None:
        self.collector = collector
        self.queue = queue
        self.clock = clock

    def toggled(self, mode: str, half_temps_k: Tuple[float, float],
                emergency: bool = False) -> None:
        self.collector.emit(ToggleEvent(
            cycle=self.clock(), queue=self.queue, mode=mode,
            half_temps_k=half_temps_k, emergency=emergency))


class UnitTracer:
    """Binds one fine-grain controller's copies to floorplan blocks."""

    __slots__ = ("collector", "blocks", "clock")

    def __init__(self, collector: TraceCollector,
                 blocks: Sequence[str], clock: Clock) -> None:
        self.collector = collector
        self.blocks = tuple(blocks)
        self.clock = clock

    def turnoff(self, copy: int, temperature_k: float) -> None:
        self.collector.emit(UnitTurnoff(
            cycle=self.clock(), block=self.blocks[copy], copy=copy,
            temperature_k=temperature_k))

    def turnon(self, copy: int,
               temperature_k: Optional[float] = None) -> None:
        self.collector.emit(UnitTurnon(
            cycle=self.clock(), block=self.blocks[copy], copy=copy,
            temperature_k=temperature_k))
