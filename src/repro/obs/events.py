"""Typed trace events emitted by the pipeline and DTM controllers.

Every event is a small frozen dataclass stamped with the ``cycle`` it
was *detected* at (the processor's cycle counter, which for DTM-driven
events is always a sensing-interval boundary).  Events carry the block
names of the floorplan (``IntExec3``, ``IntReg1``, ``IntQ0``, ...) so a
timeline can be joined against temperatures and the paper's figures.

The taxonomy mirrors the paper's §2 mechanisms:

* :class:`ToggleEvent` — an issue queue flipped its head/tail
  configuration (activity toggling, §2.1);
* :class:`UnitTurnoff` / :class:`UnitTurnon` — fine-grain turnoff of
  one resource copy (an ALU, FP adder, or register-file copy, §2.2–2.3);
* :class:`CoreStall` / :class:`CoreResume` — the temporal fallback (a
  whole-core cooling stall or duty-cycle throttle);
* :class:`ThermalCeilingCross` — a block's sensed temperature crossed
  the 358 K ceiling (the trigger condition all techniques react to);
* :class:`CheckpointRestore` — the run resumed from a warm-state
  checkpoint rather than a fresh warm-up.

``to_dict`` / :func:`event_from_dict` give a stable JSON shape for the
JSONL export; the ``kind`` discriminator is the registry key in
:data:`EVENT_TYPES`.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, ClassVar, Dict, Optional, Tuple, Type

__all__ = [
    "TraceEvent", "ToggleEvent", "UnitTurnoff", "UnitTurnon",
    "CoreStall", "CoreResume", "ThermalCeilingCross", "CheckpointRestore",
    "EVENT_TYPES", "event_from_dict",
]


@dataclass(frozen=True)
class TraceEvent:
    """Base event: something observable happened at ``cycle``."""

    kind: ClassVar[str] = "event"

    cycle: int

    def to_dict(self) -> Dict[str, Any]:
        """JSON-shaped payload with the ``kind`` discriminator."""
        payload: Dict[str, Any] = {"kind": self.kind}
        for key, value in asdict(self).items():
            payload[key] = list(value) if isinstance(value, tuple) else value
        return payload


@dataclass(frozen=True)
class ToggleEvent(TraceEvent):
    """An issue queue flipped its head/tail configuration."""

    kind: ClassVar[str] = "toggle"

    #: ``"IntQ"`` or ``"FPQ"`` (the queue, spanning both halves).
    queue: str = ""
    #: Resulting configuration: ``"normal"`` or ``"toggled"``.
    mode: str = ""
    #: (lower half, upper half) sensed temperatures at the decision.
    half_temps_k: Tuple[float, float] = (0.0, 0.0)
    emergency: bool = False


@dataclass(frozen=True)
class UnitTurnoff(TraceEvent):
    """Fine-grain turnoff of one resource copy at the ceiling."""

    kind: ClassVar[str] = "unit_turnoff"

    #: Floorplan block of the copy (``IntExec5``, ``IntReg0``, ...).
    block: str = ""
    #: Copy index within its resource (0-based).
    copy: int = 0
    #: Sensed temperature that triggered the turnoff.
    temperature_k: float = 0.0


@dataclass(frozen=True)
class UnitTurnon(TraceEvent):
    """A cooled (or force-reset) copy re-entered service."""

    kind: ClassVar[str] = "unit_turnon"

    block: str = ""
    copy: int = 0
    #: Sensed temperature at re-enable; None when the controller was
    #: force-reset without a sensor reading (``force_all_on``).
    temperature_k: Optional[float] = None


@dataclass(frozen=True)
class CoreStall(TraceEvent):
    """The temporal fallback engaged: a whole-core stall or throttle."""

    kind: ClassVar[str] = "core_stall"

    #: DTM reason string (``issue_queue``, ``alu``, ``all_alus_off``,
    #: ``regfile``, ``all_rf_copies_off``, ``other:<block>``).
    reason: str = ""
    #: First cycle the core runs (stall) or stops gating (throttle)
    #: again; known at stall time because stalls never shorten.
    until_cycle: int = 0
    #: ``"stall"`` (full halt) or ``"throttle"`` (50% duty cycle).
    temporal: str = "stall"


@dataclass(frozen=True)
class CoreResume(TraceEvent):
    """The core left its cooling stall/throttle (stamped with the
    actual resume cycle, emitted at the first sample after it)."""

    kind: ClassVar[str] = "core_resume"

    reason: str = ""
    temporal: str = "stall"


@dataclass(frozen=True)
class ThermalCeilingCross(TraceEvent):
    """A block's sensed temperature reached the thermal ceiling."""

    kind: ClassVar[str] = "ceiling_cross"

    block: str = ""
    temperature_k: float = 0.0
    ceiling_k: float = 0.0


@dataclass(frozen=True)
class CheckpointRestore(TraceEvent):
    """The run resumed from a warm-state checkpoint."""

    kind: ClassVar[str] = "checkpoint_restore"

    benchmark: str = ""
    #: Micro-op index the replayable trace was repositioned to.
    trace_position: int = 0


#: ``kind`` discriminator -> event class, for deserialization.
EVENT_TYPES: Dict[str, Type[TraceEvent]] = {
    cls.kind: cls
    for cls in (ToggleEvent, UnitTurnoff, UnitTurnon, CoreStall,
                CoreResume, ThermalCeilingCross, CheckpointRestore)
}


def event_from_dict(payload: Dict[str, Any]) -> TraceEvent:
    """Rebuild an event from its :meth:`TraceEvent.to_dict` payload."""
    data = dict(payload)
    kind = data.pop("kind", None)
    cls = EVENT_TYPES.get(kind or "")
    if cls is None:
        raise ValueError(f"unknown event kind {kind!r}")
    if "half_temps_k" in data and isinstance(data["half_temps_k"], list):
        data["half_temps_k"] = tuple(data["half_temps_k"])
    return cls(**data)
