"""Report generation: paper-figure grids rendered as Markdown/HTML.

``repro report`` runs (or answers from the result cache) the Figure
6–8 experiment grids and renders one document per invocation: a table
per figure, the paper's summary statistics, metric summaries drawn
from each run's :class:`~repro.obs.metrics.MetricsRegistry` payload,
and one-line thermal sparklines from the downsampled timelines every
result carries.  Because everything is read from
:class:`~repro.sim.results.SimulationResult` fields, a second
invocation over a warm cache re-renders the whole report without
simulating a single cycle.

This module is deliberately *not* re-exported from
:mod:`repro.obs` — it imports the experiment grids (and through them
:mod:`repro.sim.parallel`), which itself imports the metrics layer;
keeping the package root free of report keeps that edge acyclic.
"""

from __future__ import annotations

import html
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..sim.experiments import (ALUExperiment, IssueQueueExperiment,
                               RF_CONFIGS, RegFileExperiment,
                               alu_experiment, issue_queue_experiment,
                               regfile_experiment)
from ..sim.parallel import ExperimentEngine
from ..sim.results import SimulationResult
from .sparkline import sparkline

__all__ = ["Report", "generate", "FIGURES"]


class Report:
    """A renderable document: headings, paragraphs, tables, pre blocks.

    Nodes are appended in order and rendered by :meth:`to_markdown` /
    :meth:`to_html`; both renderers consume the same node list so the
    two formats can never drift apart.
    """

    def __init__(self, title: str) -> None:
        self.title = title
        self._nodes: List[Tuple[str, Any]] = [("heading", (1, title))]

    # ------------------------------------------------------------------
    def heading(self, level: int, text: str) -> None:
        self._nodes.append(("heading", (max(1, level), text)))

    def paragraph(self, text: str) -> None:
        self._nodes.append(("paragraph", text))

    def table(self, headers: Sequence[str],
              rows: Sequence[Sequence[object]]) -> None:
        self._nodes.append(("table", ([str(h) for h in headers],
                                      [[_cell(v) for v in row]
                                       for row in rows])))

    def pre(self, text: str) -> None:
        self._nodes.append(("pre", text))

    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        parts: List[str] = []
        for kind, payload in self._nodes:
            if kind == "heading":
                level, text = payload
                parts.append(f"{'#' * level} {text}")
            elif kind == "paragraph":
                parts.append(payload)
            elif kind == "table":
                headers, rows = payload
                lines = ["| " + " | ".join(headers) + " |",
                         "| " + " | ".join("---" for _ in headers) + " |"]
                for row in rows:
                    lines.append("| " + " | ".join(row) + " |")
                parts.append("\n".join(lines))
            elif kind == "pre":
                parts.append("```\n" + payload + "\n```")
        return "\n\n".join(parts) + "\n"

    def to_html(self) -> str:
        body: List[str] = []
        for kind, payload in self._nodes:
            if kind == "heading":
                level, text = payload
                tag = f"h{min(level, 6)}"
                body.append(f"<{tag}>{html.escape(text)}</{tag}>")
            elif kind == "paragraph":
                body.append(f"<p>{html.escape(payload)}</p>")
            elif kind == "table":
                headers, rows = payload
                cells = "".join(f"<th>{html.escape(h)}</th>"
                                for h in headers)
                lines = ["<table>", f"<tr>{cells}</tr>"]
                for row in rows:
                    cells = "".join(f"<td>{html.escape(v)}</td>"
                                    for v in row)
                    lines.append(f"<tr>{cells}</tr>")
                lines.append("</table>")
                body.append("\n".join(lines))
            elif kind == "pre":
                body.append(f"<pre>{html.escape(payload)}</pre>")
        content = "\n".join(body)
        return ("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
                f"<title>{html.escape(self.title)}</title>"
                "<style>table{border-collapse:collapse}"
                "td,th{border:1px solid #999;padding:2px 8px}"
                "pre{line-height:1.15}</style>"
                f"</head>\n<body>\n{content}\n</body></html>\n")


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


# ---------------------------------------------------------------------------
# metric / timeline summaries shared by the figure sections
# ---------------------------------------------------------------------------

def _vector(result: SimulationResult, name: str) -> List[float]:
    entry = result.metrics.get(name, {})
    return list(entry.get("values", []))


def _share_line(label: str, values: Sequence[float]) -> str:
    total = float(sum(values))
    if total <= 0:
        return f"{label}: no activity."
    shares = " / ".join(f"{v / total:.0%}" for v in values)
    return f"{label}: {shares} of {total:,.0f}."


def _stall_summary(results: Sequence[SimulationResult]) -> str:
    reasons: Dict[str, int] = {}
    stalls = 0
    for result in results:
        stalls += result.global_stalls
        for reason, count in result.stall_reasons.items():
            reasons[reason] = reasons.get(reason, 0) + count
    if not stalls:
        return "No global cooling stalls across the grid."
    breakdown = ", ".join(f"{reason} ×{count}" for reason, count
                          in sorted(reasons.items(),
                                    key=lambda kv: -kv[1]))
    return (f"Global cooling stalls across the grid: {stalls} "
            f"({breakdown}).")


def _event_summary(results: Sequence[SimulationResult]) -> Optional[str]:
    """Traced-event totals, when any run in the grid carried them."""
    totals: Dict[str, float] = {}
    for result in results:
        for name, entry in result.metrics.items():
            if name.startswith("trace.events."):
                kind = name[len("trace.events."):]
                totals[kind] = totals.get(kind, 0) + entry.get("value", 0)
    if not totals:
        return None
    parts = ", ".join(f"{kind} ×{int(count)}"
                      for kind, count in sorted(totals.items()))
    return f"Traced events across the grid: {parts}."


def _timeline_block(result: SimulationResult, ceiling_k: float) -> str:
    """One sparkline per stored block, on a shared temperature scale."""
    if not result.timelines:
        return "(no timelines recorded)"
    low = min(min(series) for series in result.timelines.values())
    lines = []
    for block in sorted(result.timelines):
        series = result.timelines[block]
        lines.append(f"{block:10s} {min(series):6.1f}K..{max(series):6.1f}K "
                     f"{sparkline(series, lo=low, hi=ceiling_k)}")
    lines.append(f"(scale {low:.1f}K..{ceiling_k:.1f}K ceiling; "
                 f"~{result.timeline_interval_cycles} cycles/point)")
    return "\n".join(lines)


def _hottest_run(results: Sequence[SimulationResult]
                 ) -> SimulationResult:
    return max(results, key=lambda r: (max(r.max_temps.values())
                                       if r.max_temps else float("-inf"),
                                       r.benchmark))


def _grid_section(report: Report, results: Sequence[SimulationResult],
                  ceiling_k: float) -> None:
    """The metric/event/timeline subsections every figure shares."""
    report.heading(3, "DTM activity")
    report.paragraph(_stall_summary(results))
    events = _event_summary(results)
    if events is not None:
        report.paragraph(events)
    hottest = _hottest_run(results)
    report.heading(3, "Thermal timelines (hottest run: "
                      f"{hottest.benchmark}, {hottest.technique_label})")
    report.pre(_timeline_block(hottest, ceiling_k))


# ---------------------------------------------------------------------------
# figure sections
# ---------------------------------------------------------------------------

def _figure6(report: Report, experiment: IssueQueueExperiment,
             ceiling_k: float) -> None:
    report.heading(2, "Figure 6 — issue queue: activity toggling")
    report.table(
        ("benchmark", "toggling IPC", "base IPC", "speedup"),
        [(b, t, base, f"{s:+.1%}")
         for b, t, base, s in experiment.figure6_rows()])
    constrained = ", ".join(experiment.constrained_benchmarks()) or "none"
    report.paragraph(
        f"Average speedup {experiment.average_speedup():+.1%} over all "
        f"benchmarks, {experiment.average_speedup(True):+.1%} over the "
        f"IQ-constrained set ({constrained}).")
    results = (list(experiment.toggling.values())
               + list(experiment.base.values()))
    toggles = sum(r.iq_toggles for r in experiment.toggling.values())
    lines = [f"Issue-queue toggles across the grid: {toggles}."]
    sample = _hottest_run(list(experiment.toggling.values()))
    for prefix, label in (("iq.int", "IntQ"), ("iq.fp", "FPQ")):
        moves = _vector(sample, f"{prefix}.compaction_moves")
        if moves:
            lines.append(_share_line(
                f"{label} compaction moves per half "
                f"({sample.benchmark}, toggling)", moves))
    report.paragraph(" ".join(lines))
    _grid_section(report, results, ceiling_k)


def _figure7(report: Report, experiment: ALUExperiment,
             ceiling_k: float) -> None:
    report.heading(2, "Figure 7 — ALUs: fine-grain turnoff")
    report.table(
        ("benchmark", "round-robin IPC", "fine-grain IPC", "base IPC",
         "fg speedup"),
        [(b, rr, fg, base, f"{fg / base - 1:+.1%}")
         for b, rr, fg, base in experiment.figure7_rows()])
    constrained = ", ".join(experiment.constrained_benchmarks()) or "none"
    report.paragraph(
        f"Average fine-grain speedup {experiment.average_speedup():+.1%} "
        f"over all benchmarks, {experiment.average_speedup(True):+.1%} "
        f"over the ALU-constrained set ({constrained}); fine-grain sits "
        f"{experiment.fine_grain_vs_round_robin():+.1%} from the "
        f"round-robin upper bound.")
    results = (list(experiment.round_robin.values())
               + list(experiment.fine_grain.values())
               + list(experiment.base.values()))
    turnoffs = sum(r.alu_turnoffs for r in experiment.fine_grain.values())
    lines = [f"ALU turnoff events across the fine-grain runs: "
             f"{turnoffs}."]
    sample = _hottest_run(list(experiment.base.values()))
    ops = _vector(sample, "alu.ops")
    if ops:
        lines.append(_share_line(
            f"Issue distribution over IntExec0..{len(ops) - 1} "
            f"({sample.benchmark}, base)", ops))
    report.paragraph(" ".join(lines))
    _grid_section(report, results, ceiling_k)


def _figure8(report: Report, experiment: RegFileExperiment,
             ceiling_k: float) -> None:
    report.heading(2, "Figure 8 — register file: mapping x turnoff")
    report.table(
        ("benchmark", *RF_CONFIGS),
        [(b, *values) for b, values in experiment.figure8_rows()])
    constrained = ", ".join(experiment.constrained_benchmarks()) or "none"
    report.paragraph(
        "Average speedup of fine-grain + priority over priority only: "
        f"{experiment.average_speedup('fine-grain + priority', 'priority only'):+.1%}"
        f" over all benchmarks, "
        f"{experiment.average_speedup('fine-grain + priority', 'priority only', True):+.1%}"
        f" over the RF-constrained set ({constrained}).")
    results = [result for per_bench in experiment.results.values()
               for result in per_bench.values()]
    turnoffs = sum(r.rf_turnoffs for per in ("fine-grain + priority",
                                             "fine-grain + balanced")
                   for r in experiment.results[per].values())
    lines = [f"Register-file copy turnoffs across the turnoff runs: "
             f"{turnoffs}."]
    sample = _hottest_run(list(
        experiment.results["priority only"].values()))
    reads = _vector(sample, "regfile.reads")
    if reads:
        lines.append(_share_line(
            f"Reads per RF copy ({sample.benchmark}, priority only)",
            reads))
    report.paragraph(" ".join(lines))
    _grid_section(report, results, ceiling_k)


#: figure number -> (experiment runner, section renderer).
FIGURES: Dict[str, Tuple[Callable[..., Any], Callable[..., None]]] = {
    "6": (issue_queue_experiment, _figure6),
    "7": (alu_experiment, _figure7),
    "8": (regfile_experiment, _figure8),
}


def generate(figures: Sequence[str] = ("6", "7", "8"),
             benchmarks: Optional[Sequence[str]] = None,
             max_cycles: int = 100_000, seed: int = 1,
             engine: Optional[ExperimentEngine] = None,
             ceiling_k: float = 358.0,
             title: str = "Reproduction report") -> Report:
    """Run (or load from cache) the requested figure grids and render.

    Every run goes through ``engine`` (a fresh default
    :class:`~repro.sim.parallel.ExperimentEngine` when None), so a
    warm result cache answers the whole report without simulating.
    """
    if engine is None:
        engine = ExperimentEngine()
    unknown = [f for f in figures if f not in FIGURES]
    if unknown:
        raise ValueError(f"unknown figures {unknown!r}; "
                         f"choose from {sorted(FIGURES)}")
    report = Report(title)
    kwargs: Dict[str, Any] = {"max_cycles": max_cycles, "seed": seed,
                              "engine": engine}
    if benchmarks is not None:
        kwargs["benchmarks"] = list(benchmarks)
    for figure in figures:
        runner, section = FIGURES[figure]
        section(report, runner(**kwargs), ceiling_k)
    stats = engine.stats
    report.heading(2, "Run accounting")
    compile_note = (f" after a one-time {stats.accel_compile_s:.2f}s "
                    f"compile" if stats.accel_compile_s else "")
    report.paragraph(
        f"{stats.total} runs: {stats.cache_hits} answered from cache, "
        f"{stats.batched_runs} batched "
        f"(in {stats.batch_groups} lock-stepped group(s)), "
        f"{stats.parallel_runs} parallel, {stats.inline_runs} inline; "
        f"{stats.checkpoint_restores} checkpoint restore(s); "
        f"execution backend: {stats.accel_backend}{compile_note}. "
        f"Regenerate with: repro report --figures "
        f"{','.join(figures)} --cycles {max_cycles} --seed {seed}.")
    if stats.batched_runs:
        occupancy = ", ".join(
            f"{waves} wave(s) x {size} class(es)" for size, waves in
            sorted(stats.batch_class_occupancy.items()))
        offload_note = (
            f"; {stats.offloaded_runs} follower(s) offloaded to the "
            f"worker pool" if stats.offloaded_runs else "")
        fallback_note = (
            f"; {stats.pool_fallbacks} pool wave(s) fell back inline"
            if stats.pool_fallbacks else "")
        report.paragraph(
            f"Divergence accounting: {stats.fork_count} fork(s), "
            f"{stats.merge_count} re-convergence merge(s); "
            f"per-boundary execution-class occupancy: "
            f"{occupancy or 'n/a'}{offload_note}{fallback_note}.")
    fleet = stats.fleet_metrics
    if "temp.peak_k" in fleet:
        peak = fleet.gauge("temp.peak_k").value
        if peak is not None:
            report.paragraph(
                f"Fleet peak sensed temperature: {peak:.1f} K "
                f"(ceiling {ceiling_k:.1f} K).")
    return report
