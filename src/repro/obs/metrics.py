"""Metrics registry: counters, gauges, vectors, and histograms.

Every simulation run fills a :class:`MetricsRegistry` at collection
time (issue distribution per ALU, per-copy register-file reads,
compaction moves per queue half, the stall-cycle breakdown) and
serializes it into ``SimulationResult.metrics`` as a plain dict — so
metrics survive the result cache, pickling across worker processes,
and JSON export unchanged.

Aggregation is first-class: :meth:`MetricsRegistry.merge_dict` folds
one run's serialized metrics into a fleet-level registry with
per-kind semantics —

* **counter** — sums (total toggles across a grid),
* **gauge** — keeps the maximum (fleet peak temperature),
* **vector** — element-wise sum, right-padding with zeros when runs
  disagree on length (per-ALU ops across heterogeneous configs),
* **histogram** — adds bucket counts (bounds must match).

:class:`~repro.sim.parallel.ExperimentEngine` merges every result it
returns (fresh, parallel, or cache-hit) into
``EngineStats.fleet_metrics``, so a parallel grid reports the same
fleet totals regardless of worker count or cache state.
"""

from __future__ import annotations

from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

__all__ = ["Metric", "Counter", "Gauge", "VectorCounter", "Histogram",
           "MetricsRegistry"]

Number = float


class Metric:
    """Base metric: a named value with kind-specific merge semantics."""

    kind: str = "metric"

    def __init__(self, name: str) -> None:
        self.name = name

    def to_dict(self) -> Dict[str, Any]:
        raise NotImplementedError

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        """Fold one serialized instance of this metric into self."""
        raise NotImplementedError


class Counter(Metric):
    """Monotonic scalar; merge sums."""

    kind = "counter"

    def __init__(self, name: str, value: Number = 0) -> None:
        super().__init__(name)
        self.value = value

    def inc(self, amount: Number = 1) -> None:
        if amount < 0:
            raise ValueError("counters only increase")
        self.value += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        self.value += payload["value"]


class Gauge(Metric):
    """Point-in-time scalar; merge keeps the maximum (peak semantics)."""

    kind = "gauge"

    def __init__(self, name: str, value: Optional[Number] = None) -> None:
        super().__init__(name)
        self.value = value

    def set(self, value: Number) -> None:
        self.value = value

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "value": self.value}

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        other = payload["value"]
        if other is None:
            return
        self.value = other if self.value is None else max(self.value, other)


class VectorCounter(Metric):
    """Per-index counters (one slot per ALU / copy / queue half);
    merge is element-wise sum, zero-padded to the longer vector."""

    kind = "vector"

    def __init__(self, name: str,
                 values: Optional[Sequence[Number]] = None) -> None:
        super().__init__(name)
        self.values: List[Number] = list(values or [])

    def add(self, index: int, amount: Number = 1) -> None:
        if index < 0:
            raise IndexError("vector index must be non-negative")
        while len(self.values) <= index:
            self.values.append(0)
        self.values[index] += amount

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "values": list(self.values)}

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        other = payload["values"]
        while len(self.values) < len(other):
            self.values.append(0)
        for i, value in enumerate(other):
            self.values[i] += value


class Histogram(Metric):
    """Fixed-bucket histogram: ``bounds`` are inclusive upper edges,
    with an implicit overflow bucket; merge adds counts."""

    kind = "histogram"

    def __init__(self, name: str, bounds: Sequence[Number],
                 counts: Optional[Sequence[int]] = None,
                 total: Number = 0.0, count: int = 0) -> None:
        super().__init__(name)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty ascending list")
        self.bounds: Tuple[Number, ...] = tuple(bounds)
        self.counts: List[int] = (list(counts) if counts is not None
                                  else [0] * (len(self.bounds) + 1))
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError("need len(bounds) + 1 buckets")
        self.total = total
        self.count = count

    def observe(self, value: Number) -> None:
        index = len(self.bounds)
        for i, bound in enumerate(self.bounds):
            if value <= bound:
                index = i
                break
        self.counts[index] += 1
        self.total += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {"kind": self.kind, "bounds": list(self.bounds),
                "counts": list(self.counts), "total": self.total,
                "count": self.count}

    def merge_payload(self, payload: Dict[str, Any]) -> None:
        if tuple(payload["bounds"]) != self.bounds:
            raise ValueError(
                f"histogram '{self.name}' bucket bounds disagree")
        for i, value in enumerate(payload["counts"]):
            self.counts[i] += value
        self.total += payload["total"]
        self.count += payload["count"]


_KINDS: Dict[str, type] = {cls.kind: cls for cls in
                           (Counter, Gauge, VectorCounter, Histogram)}


class MetricsRegistry:
    """Named metrics with get-or-create accessors and dict round-trip."""

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    # ------------------------------------------------------------------
    def _get_or_create(self, name: str, cls: type, *args: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise TypeError(f"metric '{name}' is a {metric.kind}, "
                            f"not a {cls.kind}")  # type: ignore[attr-defined]
        return metric

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def vector(self, name: str) -> VectorCounter:
        return self._get_or_create(name, VectorCounter)

    def histogram(self, name: str,
                  bounds: Sequence[Number]) -> Histogram:
        metric = self._metrics.get(name)
        if metric is None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, Histogram):
            raise TypeError(f"metric '{name}' is a {metric.kind}, "
                            f"not a histogram")
        return metric

    # ------------------------------------------------------------------
    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return list(self._metrics)

    def __len__(self) -> int:
        return len(self._metrics)

    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    # ------------------------------------------------------------------
    def to_dict(self) -> Dict[str, Any]:
        """Serialized form (what ``SimulationResult.metrics`` holds)."""
        return {name: metric.to_dict()
                for name, metric in self._metrics.items()}

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "MetricsRegistry":
        registry = cls()
        registry.merge_dict(payload)
        return registry

    def merge_dict(self, payload: Dict[str, Any]) -> None:
        """Fold one serialized registry into this one (fleet merge)."""
        for name, entry in payload.items():
            kind = entry.get("kind")
            metric_cls = _KINDS.get(kind or "")
            if metric_cls is None:
                raise ValueError(f"metric '{name}': unknown kind {kind!r}")
            metric = self._metrics.get(name)
            if metric is None:
                if metric_cls is Histogram:
                    metric = Histogram(name, entry["bounds"])
                else:
                    metric = metric_cls(name)
                self._metrics[name] = metric
            elif not isinstance(metric, metric_cls):
                raise TypeError(
                    f"metric '{name}' is a {metric.kind} here but a "
                    f"{kind} in the merged payload")
            metric.merge_payload(entry)

    def merge(self, other: "MetricsRegistry") -> None:
        self.merge_dict(other.to_dict())
