"""Tiny text renderers for thermal timelines.

:func:`sparkline` maps a numeric series onto eight block glyphs
(``▁▂▃▄▅▆▇█``) for one-line timelines in terminal output and Markdown
reports; :func:`downsample` reduces a long sensor history to a fixed
number of window means so a whole run's thermal trajectory fits in a
result record (and therefore in the result cache, where reports read
it back without re-simulating).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

__all__ = ["sparkline", "downsample", "BARS"]

#: Glyph ramp, coolest to hottest.
BARS = "▁▂▃▄▅▆▇█"


def sparkline(values: Sequence[float], lo: Optional[float] = None,
              hi: Optional[float] = None) -> str:
    """Render ``values`` as one glyph per sample.

    ``lo``/``hi`` pin the scale (e.g. ambient and the thermal ceiling
    so several timelines share one scale); they default to the series
    min/max.  A flat series renders as all-low glyphs.
    """
    if not values:
        return ""
    low = min(values) if lo is None else lo
    high = max(values) if hi is None else hi
    span = high - low
    if span <= 0:
        return BARS[0] * len(values)
    top = len(BARS) - 1
    glyphs = []
    for value in values:
        level = int((value - low) / span * top + 0.5)
        glyphs.append(BARS[min(max(level, 0), top)])
    return "".join(glyphs)


def downsample(values: Sequence[float], points: int) -> List[float]:
    """Reduce ``values`` to at most ``points`` window means.

    The stride is ``ceil(len/points)`` so every sample lands in
    exactly one window; the final window may be shorter.  Window
    *means* (not strided picks) keep short heat spikes visible.
    """
    if points < 1:
        raise ValueError("points must be positive")
    n = len(values)
    if n <= points:
        return [float(v) for v in values]
    stride = -(-n // points)  # ceil division
    out: List[float] = []
    for start in range(0, n, stride):
        window = values[start:start + stride]
        out.append(float(sum(window)) / len(window))
    return out
